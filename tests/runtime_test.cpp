// End-to-end tests of the XLUPC-style runtime: allocation, data movement
// over every path (local / shared-memory / AM / RDMA), address-cache
// population and invalidation, fences, barriers, locks, NAK fallback and
// determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/runtime.h"
#include "core/shared_array.h"

namespace xlupc::core {
namespace {

using sim::Task;

RuntimeConfig gm_config(std::uint32_t nodes, std::uint32_t tpn,
                        bool cache = true) {
  RuntimeConfig cfg;
  cfg.platform = net::mare_nostrum_gm();
  cfg.nodes = nodes;
  cfg.threads_per_node = tpn;
  cfg.cache.enabled = cache;
  return cfg;
}

RuntimeConfig lapi_config(std::uint32_t nodes, std::uint32_t tpn,
                          bool cache = true) {
  RuntimeConfig cfg;
  cfg.platform = net::power5_lapi();
  cfg.nodes = nodes;
  cfg.threads_per_node = tpn;
  cfg.cache.enabled = cache;
  return cfg;
}

TEST(Runtime, ConfigValidation) {
  EXPECT_THROW(Runtime(gm_config(0, 1)), std::invalid_argument);
  auto cfg = gm_config(2, 5);  // MareNostrum blades have 4 cores
  EXPECT_THROW(Runtime rt(std::move(cfg)), std::invalid_argument);
}

TEST(Runtime, AllAllocGivesSameHandleEverywhere) {
  Runtime rt(gm_config(4, 2));
  std::vector<svd::Handle> handles(rt.threads());
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(64, 8);
    handles[th.id()] = a.handle;
    co_await th.barrier();
  });
  for (const auto& h : handles) {
    EXPECT_EQ(h, handles[0]);
    EXPECT_TRUE(h.is_all());
  }
  // Every node replica holds the control block with a local address.
  for (NodeId n = 0; n < 4; ++n) {
    const auto* cb = rt.directory(n).find(handles[0]);
    ASSERT_NE(cb, nullptr);
    EXPECT_NE(cb->local_base, kNullAddr);
  }
}

TEST(Runtime, SameArrayHasDifferentLocalAddressPerNode) {
  // The Fig. 2 property that motivates the whole design.
  Runtime rt(gm_config(4, 1));
  svd::Handle handle;
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(64, 8);
    handle = a.handle;
    co_await th.barrier();
  });
  std::set<Addr> bases;
  for (NodeId n = 0; n < 4; ++n) {
    bases.insert(rt.directory(n).find(handle)->local_base);
  }
  EXPECT_EQ(bases.size(), 4u);
}

TEST(Runtime, GetPutRoundTripAllPaths) {
  Runtime rt(gm_config(2, 2));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(64, 8);  // default block: 8 per thread
    co_await th.barrier();
    // Each thread writes every element it can reach: same-thread, same
    // node and remote slots all get distinct values from thread 0.
    if (th.id() == 0) {
      for (std::uint64_t i = 0; i < 64; ++i) {
        co_await th.write<std::uint64_t>(a, i, 1000 + i);
      }
      for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_EQ(co_await th.read<std::uint64_t>(a, i), 1000 + i);
      }
    }
    co_await th.barrier();
    // Every thread verifies every element (reads over all paths).
    for (std::uint64_t i = 0; i < 64; ++i) {
      EXPECT_EQ(co_await th.read<std::uint64_t>(a, i), 1000 + i);
    }
    co_await th.barrier();
  });
  const auto& c = rt.counters();
  EXPECT_GT(c.local_gets + c.shm_gets, 0u);
  EXPECT_GT(c.am_gets + c.rdma_gets, 0u);
  EXPECT_EQ(c.rdma_naks, 0u);  // greedy pinning: a hit is always valid
}

TEST(Runtime, CachePopulatesViaGetPiggyback) {
  Runtime rt(gm_config(2, 1));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      (void)co_await th.read<std::uint64_t>(a, 8);   // miss -> AM + piggyback
      (void)co_await th.read<std::uint64_t>(a, 9);   // hit -> RDMA
      (void)co_await th.read<std::uint64_t>(a, 10);  // hit -> RDMA
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.counters().am_gets, 1u);
  EXPECT_EQ(rt.counters().rdma_gets, 2u);
  EXPECT_EQ(rt.cache(0).stats().hits, 2u);
  EXPECT_EQ(rt.cache(0).stats().misses, 1u);
  // The target node pinned the whole piece (greedy, Sec. 3.1).
  EXPECT_GT(rt.pinned(1).pinned_bytes(), 0u);
}

TEST(Runtime, CacheDisabledAlwaysUsesAmPath) {
  Runtime rt(gm_config(2, 1, /*cache=*/false));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      for (int i = 0; i < 5; ++i) {
        (void)co_await th.read<std::uint64_t>(a, 8 + i);
      }
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.counters().am_gets, 5u);
  EXPECT_EQ(rt.counters().rdma_gets, 0u);
  EXPECT_EQ(rt.pinned(1).pinned_bytes(), 0u);  // no want_base, no pinning
}

TEST(Runtime, PutAckPopulatesCacheOnGm) {
  Runtime rt(gm_config(2, 1));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      co_await th.write<std::uint64_t>(a, 8, 1);
      co_await th.fence();  // wait for the ACK that carries the base
      co_await th.write<std::uint64_t>(a, 9, 2);
      co_await th.fence();
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.counters().am_puts, 1u);
  EXPECT_EQ(rt.counters().rdma_puts, 1u);
}

TEST(Runtime, LapiPutCacheDisabledByDefault) {
  // Sec. 4.3: the authors disabled the address cache for PUT on LAPI.
  Runtime rt(lapi_config(2, 1));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      for (int i = 0; i < 4; ++i) {
        co_await th.write<std::uint64_t>(a, 8 + i, i);
        co_await th.fence();
      }
      // GETs still use the cache on LAPI.
      (void)co_await th.read<std::uint64_t>(a, 8);
      (void)co_await th.read<std::uint64_t>(a, 9);
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.counters().rdma_puts, 0u);
  EXPECT_EQ(rt.counters().am_puts, 4u);
  EXPECT_GT(rt.counters().rdma_gets, 0u);
}

TEST(Runtime, PutCacheOverrideEnablesLapiRdmaPut) {
  auto cfg = lapi_config(2, 1);
  cfg.cache.put_enabled = true;
  Runtime rt(std::move(cfg));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      co_await th.write<std::uint64_t>(a, 8, 1);
      co_await th.fence();
      co_await th.write<std::uint64_t>(a, 9, 2);
      co_await th.fence();
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.counters().rdma_puts, 1u);
}

TEST(Runtime, MemgetSpansOwnershipBoundaries) {
  Runtime rt(gm_config(2, 2));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(40, 4, 3);  // block 3, wraps threads
    co_await th.barrier();
    if (th.id() == 0) {
      for (std::uint64_t i = 0; i < 40; ++i) {
        co_await th.write<std::uint32_t>(a, i, 100 + i);
      }
      co_await th.fence();
      std::vector<std::uint32_t> out(17);
      co_await th.memget(
          a, 5, std::as_writable_bytes(std::span(out.data(), out.size())));
      for (std::uint64_t k = 0; k < out.size(); ++k) {
        EXPECT_EQ(out[k], 105 + k);
      }
    }
    co_await th.barrier();
  });
}

TEST(Runtime, MemputSpansOwnershipBoundaries) {
  Runtime rt(gm_config(2, 2));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(40, 4, 3);
    co_await th.barrier();
    if (th.id() == 3) {
      std::vector<std::uint32_t> in(23);
      for (std::uint64_t k = 0; k < in.size(); ++k) {
        in[k] = 7000 + k;
      }
      co_await th.memput(a, 10,
                         std::as_bytes(std::span(in.data(), in.size())));
      co_await th.fence();
      for (std::uint64_t k = 0; k < in.size(); ++k) {
        EXPECT_EQ(co_await th.read<std::uint32_t>(a, 10 + k), 7000 + k);
      }
    }
    co_await th.barrier();
  });
}

TEST(Runtime, SpanCrossingBoundaryIsRejected) {
  Runtime rt(gm_config(2, 1));
  EXPECT_THROW(
      rt.run([&](UpcThread& th) -> Task<void> {
        auto a = co_await th.all_alloc(16, 8, 4);
        std::vector<std::byte> buf(8 * 8);  // 8 elements > block of 4
        co_await th.get(a, 0, buf);
      }),
      std::invalid_argument);
}

TEST(Runtime, LargeTransfersUseRendezvousAndStayCorrect) {
  Runtime rt(gm_config(2, 1));
  constexpr std::size_t kBig = 200 * 1024;  // above the 16 KB eager limit
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(2 * kBig, 1, kBig);
    co_await th.barrier();
    if (th.id() == 0) {
      std::vector<std::byte> out(kBig);
      std::vector<std::byte> pattern(kBig);
      for (std::size_t i = 0; i < kBig; ++i) {
        pattern[i] = static_cast<std::byte>(i * 31 + 7);
      }
      co_await th.put(a, kBig, pattern);
      co_await th.fence();
      co_await th.get(a, kBig, out);
      EXPECT_EQ(std::memcmp(out.data(), pattern.data(), kBig), 0);
    }
    co_await th.barrier();
  });
  EXPECT_GE(rt.transport().stats().rendezvous_puts, 1u);
}

TEST(Runtime, FreeInvalidatesCachesEverywhere) {
  Runtime rt(gm_config(3, 1));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(30, 8, 10);
    co_await th.barrier();
    // Everyone reads a remote slot -> caches populated.
    (void)co_await th.read<std::uint64_t>(
        a, ((th.id() + 1) % 3) * 10);
    co_await th.barrier();
    if (th.id() == 0) {
      EXPECT_EQ(rt.cache(th.node()).size(), 1u);
      co_await th.free_array(a);  // eager invalidation (Sec. 3.1)
    }
    co_await th.barrier();
  });
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(rt.cache(n).size(), 0u) << "node " << n;
    EXPECT_EQ(rt.pinned(n).pinned_bytes(), 0u) << "node " << n;
    EXPECT_EQ(rt.memory(n).live_allocations(), 0u) << "node " << n;
  }
}

TEST(Runtime, GlobalAllocMaterializesPiecesEverywhere) {
  Runtime rt(gm_config(3, 1));
  rt.run([&](UpcThread& th) -> Task<void> {
    if (th.id() == 1) {
      auto a = co_await th.global_alloc(30, 8, 10);
      EXPECT_EQ(a.handle.partition, 1u);  // caller's partition
      // All remote pieces exist: write/read each piece.
      for (std::uint64_t i = 0; i < 30; i += 10) {
        co_await th.write<std::uint64_t>(a, i, 400 + i);
        EXPECT_EQ(co_await th.read<std::uint64_t>(a, i), 400 + i);
      }
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.memory(0).live_allocations(), 1u);
  EXPECT_EQ(rt.memory(2).live_allocations(), 1u);
}

TEST(Runtime, NakTriggersFallbackAndReinsertion) {
  Runtime rt(gm_config(2, 1));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      (void)co_await th.read<std::uint64_t>(a, 8);  // populate cache + pin
      // Failure injection: the target silently unpins its piece (in the
      // real system this cannot happen under greedy pinning; the runtime
      // must recover via the NAK path).
      const auto* cb = rt.directory(1).find(a.handle);
      rt.pinned(1).unpin(cb->local_base, cb->local_bytes);
      const auto v = co_await th.read<std::uint64_t>(a, 8);  // NAK -> AM
      EXPECT_EQ(v, 0u);
      EXPECT_EQ(rt.counters().rdma_naks, 1u);
      // The fallback re-pinned and re-populated: next access is RDMA.
      (void)co_await th.read<std::uint64_t>(a, 8);
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.counters().rdma_gets, 1u);  // the post-recovery access
  EXPECT_EQ(rt.counters().am_gets, 2u);    // initial miss + NAK fallback
}

TEST(Runtime, FenceWaitsForRemoteCompletion) {
  Runtime rt(gm_config(2, 1));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      const sim::Time before = th.now();
      co_await th.write<std::uint64_t>(a, 8, 7);  // local completion only
      const sim::Time local = th.now();
      co_await th.fence();
      const sim::Time remote = th.now();
      EXPECT_GT(remote - before, local - before);
    }
    co_await th.barrier();
  });
}

TEST(Runtime, BarrierSynchronizesAllThreads) {
  Runtime rt(gm_config(2, 4));
  std::vector<sim::Time> release(8);
  rt.run([&](UpcThread& th) -> Task<void> {
    co_await th.compute(sim::us(static_cast<double>(th.id()) * 10));
    co_await th.barrier();
    release[th.id()] = th.now();
  });
  for (std::uint32_t t = 1; t < 8; ++t) {
    EXPECT_EQ(release[t], release[0]);
  }
}

TEST(Runtime, DeadlockIsDetected) {
  Runtime rt(gm_config(2, 1));
  EXPECT_THROW(rt.run([&](UpcThread& th) -> Task<void> {
                 if (th.id() == 0) co_await th.barrier();  // thread 1 skips
               }),
               std::runtime_error);
}

TEST(Runtime, LocksProvideMutualExclusionAcrossNodes) {
  Runtime rt(gm_config(2, 2));
  int in_critical = 0;
  int max_in_critical = 0;
  std::vector<ThreadId> order;
  rt.run([&](UpcThread& th) -> Task<void> {
    static LockDesc lock;
    if (th.id() == 0) lock = co_await th.lock_alloc();
    co_await th.barrier();
    for (int round = 0; round < 3; ++round) {
      co_await th.lock(lock);
      max_in_critical = std::max(max_in_critical, ++in_critical);
      order.push_back(th.id());
      co_await th.compute(sim::us(5));
      --in_critical;
      co_await th.unlock(lock);
    }
    co_await th.barrier();
  });
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_EQ(order.size(), 12u);
}

TEST(Runtime, UnlockByNonHolderThrows) {
  Runtime rt(gm_config(1, 2));
  EXPECT_THROW(rt.run([&](UpcThread& th) -> Task<void> {
                 static LockDesc lock;
                 if (th.id() == 0) lock = co_await th.lock_alloc();
                 co_await th.barrier();
                 if (th.id() == 0) co_await th.lock(lock);
                 co_await th.barrier();
                 if (th.id() == 1) co_await th.unlock(lock);
                 co_await th.barrier();
               }),
               std::logic_error);
}

TEST(Runtime, TwoDArraysRoundTrip) {
  Runtime rt(gm_config(2, 2));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto grid = co_await SharedArray2D<double>::all_alloc(th, 8, 8, 4, 4);
    co_await th.barrier();
    if (th.id() == 0) {
      for (std::uint64_t r = 0; r < 8; ++r) {
        for (std::uint64_t c = 0; c < 8; ++c) {
          co_await grid.write(th, r, c, r * 10.0 + c);
        }
      }
      for (std::uint64_t r = 0; r < 8; ++r) {
        for (std::uint64_t c = 0; c < 8; ++c) {
          EXPECT_DOUBLE_EQ(co_await grid.read(th, r, c), r * 10.0 + c);
        }
      }
    }
    co_await th.barrier();
  });
}

TEST(Runtime, ChunkedPinningWorksEndToEnd) {
  auto cfg = gm_config(2, 1);
  cfg.pin_strategy = mem::PinStrategy::kChunked;
  Runtime rt(std::move(cfg));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(1 << 16, 8, 1 << 15);
    co_await th.barrier();
    if (th.id() == 0) {
      for (int i = 0; i < 8; ++i) {
        co_await th.write<std::uint64_t>(a, (1 << 15) + i * 100, i);
      }
      co_await th.fence();
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(co_await th.read<std::uint64_t>(a, (1 << 15) + i * 100),
                  static_cast<std::uint64_t>(i));
      }
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.counters().rdma_naks, 0u);
  EXPECT_GT(rt.counters().rdma_gets, 0u);
}

TEST(Runtime, WarmCacheMakesFirstAccessRdma) {
  Runtime rt(gm_config(2, 1));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      rt.warm_address_cache(a);
      (void)co_await th.read<std::uint64_t>(a, 8);
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.counters().am_gets, 0u);
  EXPECT_EQ(rt.counters().rdma_gets, 1u);
}

TEST(Runtime, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Runtime rt(gm_config(2, 4));
    rt.run([&](UpcThread& th) -> Task<void> {
      auto a = co_await th.all_alloc(256, 8);
      co_await th.barrier();
      for (int i = 0; i < 20; ++i) {
        const auto idx = th.rng().below(256);
        co_await th.write<std::uint64_t>(a, idx, th.id());
        (void)co_await th.read<std::uint64_t>(a, th.rng().below(256));
      }
      co_await th.barrier();
    });
    return std::pair(rt.elapsed(), rt.simulator().events_executed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Runtime, IntrinsicsMatchLayout) {
  Runtime rt(gm_config(2, 2));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(24, 4, 3);
    EXPECT_EQ(th.threadof(a, 0), 0u);
    EXPECT_EQ(th.threadof(a, 3), 1u);
    EXPECT_EQ(th.threadof(a, 12), 0u);
    EXPECT_EQ(th.phaseof(a, 4), 1u);
    EXPECT_EQ(th.nodeof(a, 6), 1u);  // thread 2 -> node 1
    co_await th.barrier();
  });
}

TEST(Runtime, SingleNodeHasNoNetworkTraffic) {
  Runtime rt(gm_config(1, 4));
  rt.run([&](UpcThread& th) -> Task<void> {
    auto a = co_await th.all_alloc(64, 8);
    co_await th.barrier();
    for (std::uint64_t i = 0; i < 64; ++i) {
      co_await th.write<std::uint64_t>(a, i, i);
    }
    co_await th.barrier();
  });
  EXPECT_EQ(rt.counters().am_puts + rt.counters().rdma_puts, 0u);
  EXPECT_EQ(rt.transport().stats().wire_bytes, 0u);
}

}  // namespace
}  // namespace xlupc::core
