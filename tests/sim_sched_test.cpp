// Scheduler-backend and allocator tests for the fast simulator core
// (docs/PERFORMANCE.md): equal-time FIFO ordering on both event-queue
// backends, byte-identical whole runs across backends on every machine
// model, arena/pool reuse under churn, and the small-buffer-optimized
// callback types.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "benchsupport/report.h"
#include "core/runtime.h"
#include "net/machine_registry.h"
#include "sim/callback.h"
#include "sim/event_queue.h"
#include "sim/pool.h"
#include "sim/simulator.h"

namespace xlupc {
namespace {

using sim::Callback;
using sim::EventQueue;
using sim::SchedulerBackend;
using sim::SmallFn;

// ------------------------------------------------------------------
// Event-queue ordering, per backend
// ------------------------------------------------------------------

TEST(SchedulerBackends, EqualTimeEventsRunFifoOnBothBackends) {
  for (SchedulerBackend b :
       {SchedulerBackend::kPairing, SchedulerBackend::kHeap}) {
    EventQueue q(b);
    std::vector<int> order;
    // Interleave two timestamps so FIFO must hold per time, not
    // globally: expected pop order is all of t=5 (0..15), then t=9.
    for (int i = 0; i < 16; ++i) {
      q.schedule(5, [&order, i] { order.push_back(i); });
      q.schedule(9, [&order, i] { order.push_back(100 + i); });
    }
    while (!q.empty()) q.pop_and_run();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(order[i], i) << "backend " << static_cast<int>(b);
      EXPECT_EQ(order[16 + i], 100 + i) << "backend " << static_cast<int>(b);
    }
  }
}

TEST(SchedulerBackends, BackendsPopIdenticalSequences) {
  // A pseudo-random schedule, including re-scheduling from inside
  // callbacks, must pop identically on both backends: the (time, seq)
  // key is a strict total order, so the pop sequence is unique.
  auto run = [](SchedulerBackend b) {
    EventQueue q(b);
    std::vector<std::pair<sim::Time, int>> seen;
    std::uint64_t x = 88172645463325252ull;
    auto rnd = [&x] {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    for (int i = 0; i < 200; ++i) {
      const sim::Time t = rnd() % 50;
      q.schedule(t, [&seen, &q, &rnd, t, i] {
        seen.emplace_back(t, i);
        if (seen.size() % 3 == 0) {
          q.schedule(t + 1 + seen.size() % 7, [&seen, t] {
            seen.emplace_back(t + 1000, -1);
          });
        }
      });
    }
    while (!q.empty()) q.pop_and_run();
    return seen;
  };
  EXPECT_EQ(run(SchedulerBackend::kPairing), run(SchedulerBackend::kHeap));
}

TEST(SchedulerBackends, EnvSelectsBackend) {
  ::setenv("XLUPC_SIM_SCHEDULER", "heap", 1);
  EXPECT_EQ(sim::default_scheduler_backend(), SchedulerBackend::kHeap);
  ::setenv("XLUPC_SIM_SCHEDULER", "pairing", 1);
  EXPECT_EQ(sim::default_scheduler_backend(), SchedulerBackend::kPairing);
  ::setenv("XLUPC_SIM_SCHEDULER", "nonsense", 1);
  EXPECT_EQ(sim::default_scheduler_backend(), SchedulerBackend::kPairing);
  ::unsetenv("XLUPC_SIM_SCHEDULER");
}

// ------------------------------------------------------------------
// Cross-backend byte-identical whole runs, every machine model
// ------------------------------------------------------------------

std::string run_fingerprint(const char* machine) {
  core::RuntimeConfig cfg;
  cfg.platform = net::make_machine(machine);
  cfg.nodes = 4;
  cfg.threads_per_node = 2;
  core::Runtime rt(std::move(cfg));
  rt.run([](core::UpcThread& th) -> sim::Task<void> {
    core::ArrayDesc a = co_await th.all_alloc(256, sizeof(std::uint64_t));
    co_await th.barrier();
    std::uint64_t pos = (th.id() * 13) % 256;
    for (int i = 0; i < 24; ++i) {
      const std::uint64_t v = co_await th.read<std::uint64_t>(a, pos);
      co_await th.write<std::uint64_t>(a, (pos + 7) % 256, v + 1);
      pos = (pos + 31) % 256;
      co_await th.compute(50);
    }
    co_await th.fence();
    co_await th.barrier();
  });
  // The full observability snapshot serialized: any divergence in
  // timing, counters, resource accounting or event count shows up here.
  return bench::to_json(rt.metrics()).dump_string() + "|" +
         std::to_string(rt.simulator().events_executed()) + "|" +
         std::to_string(rt.elapsed());
}

TEST(SchedulerBackends, WholeRunsIdenticalAcrossBackends) {
  for (const char* machine : {"gm", "lapi", "ib"}) {
    ::setenv("XLUPC_SIM_SCHEDULER", "pairing", 1);
    const std::string pairing = run_fingerprint(machine);
    ::setenv("XLUPC_SIM_SCHEDULER", "heap", 1);
    const std::string heap = run_fingerprint(machine);
    ::unsetenv("XLUPC_SIM_SCHEDULER");
    EXPECT_EQ(pairing, heap) << "machine " << machine;
  }
}

// ------------------------------------------------------------------
// Arena / pool reuse under churn
// ------------------------------------------------------------------

TEST(SchedulerBackends, PairingArenaStopsGrowingUnderChurn) {
  EventQueue q(SchedulerBackend::kPairing);
  // Prime the arena with one full round, then churn: capacity must not
  // grow once the high-water mark of pending events is reached.
  auto round = [&q](sim::Time base) {
    for (int i = 0; i < 64; ++i) q.schedule(base + i % 8, [] {});
    while (!q.empty()) q.pop_and_run();
  };
  round(0);
  const std::size_t cap = q.arena_capacity();
  ASSERT_GT(cap, 0u);
  for (int r = 1; r < 50; ++r) round(r * 100);
  EXPECT_EQ(q.arena_capacity(), cap);
  EXPECT_EQ(q.arena_free(), cap);  // drained queue: every node recycled
}

TEST(PoolAllocator, ReusesFreedBlocksWithoutNewChunks) {
  // Prime the size class, then churn it: every allocation must be served
  // from the freelist (no new chunks carved).
  sim::pool_free(sim::pool_alloc(128));
  const sim::PoolStats before = sim::pool_stats();
  for (int i = 0; i < 1000; ++i) {
    void* p = sim::pool_alloc(128);
    sim::pool_free(p);
  }
  const sim::PoolStats after = sim::pool_stats();
  EXPECT_EQ(after.chunks, before.chunks);
  EXPECT_EQ(after.chunk_bytes, before.chunk_bytes);
  EXPECT_EQ(after.reuses, before.reuses + 1000);
}

TEST(PoolAllocator, TaggedHeadersSurviveModeSwitches) {
  // Blocks are tagged with their origin, so frees dispatch correctly
  // even across pool_set_bypass flips (the simspeed --mode switch).
  ASSERT_FALSE(sim::pool_bypass());
  void* pooled = sim::pool_alloc(64);
  sim::pool_set_bypass(true);
  void* heaped = sim::pool_alloc(64);
  sim::pool_free(pooled);  // pooled block freed while bypass is on
  sim::pool_set_bypass(false);
  sim::pool_free(heaped);  // malloc'd block freed while bypass is off
  const sim::PoolStats st = sim::pool_stats();
  EXPECT_GE(st.frees, 2u);
}

TEST(PoolAllocator, OversizeBlocksFallThrough) {
  const sim::PoolStats before = sim::pool_stats();
  void* big = sim::pool_alloc(1 << 20);
  sim::pool_free(big);
  EXPECT_EQ(sim::pool_stats().oversize, before.oversize + 1);
}

// ------------------------------------------------------------------
// Small-buffer-optimized callable types
// ------------------------------------------------------------------

TEST(CallbackType, InlineCaptureSurvivesMove) {
  std::array<char, 32> payload{};
  payload[0] = 7;
  int hits = 0;
  Callback a([payload, &hits] { hits += payload[0]; });
  Callback b(std::move(a));  // relocate within the inline buffer
  b();
  EXPECT_EQ(hits, 7);
}

TEST(CallbackType, SpilledCaptureSurvivesMove) {
  std::array<char, 200> payload{};  // larger than the inline buffer
  payload[0] = 3;
  int hits = 0;
  Callback a([payload, &hits] { hits += payload[0]; });
  Callback b(std::move(a));
  Callback c(std::move(b));
  c();
  EXPECT_EQ(hits, 3);
}

TEST(SmallFnType, InvokesWithArgumentsAndResult) {
  SmallFn<int(int, int)> f([](int a, int b) { return a * 10 + b; });
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(3, 4), 34);
  SmallFn<int(int, int)> g(std::move(f));
  EXPECT_EQ(g(1, 2), 12);
}

TEST(SmallFnType, SpilledStateSurvivesMoveChain) {
  std::array<std::uint64_t, 16> big{};
  big[15] = 42;
  SmallFn<std::uint64_t()> f([big] { return big[15]; });
  SmallFn<std::uint64_t()> g(std::move(f));
  SmallFn<std::uint64_t()> h(std::move(g));
  EXPECT_EQ(h(), 42u);
}

TEST(SmallFnType, DefaultConstructedIsEmpty) {
  SmallFn<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = SmallFn<void()>([] {});
  EXPECT_TRUE(static_cast<bool>(f));
}

}  // namespace
}  // namespace xlupc
