// Regression tests for the asynchronous communication engine
// (docs/COMM_ENGINE.md): the nonblocking surface (get_nb/put_nb/
// memget_nb/memput_nb + wait/wait_all), the CompletionEngine's handle
// lifecycle, and — most importantly — that the blocking calls, now thin
// issue+wait wrappers over the same CommOp path, are byte-identical in
// simulated time and tier counters to what they replaced.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/runtime.h"
#include "net/params.h"

namespace xlupc::core {
namespace {

core::RuntimeConfig config(net::TransportKind kind, std::uint32_t nodes,
                           std::uint32_t tpn) {
  core::RuntimeConfig cfg;
  cfg.platform = net::preset(kind);
  cfg.nodes = nodes;
  cfg.threads_per_node = tpn;
  return cfg;
}

enum class Mode { kBlocking, kNonblocking };

struct OneOp {
  sim::Time done = 0;  ///< sim time when thread 0's access completed
  OpCounters counters;
  std::uint64_t value = 0;  ///< what the GET landed
};

// One 8-byte GET of `elem` by thread 0, either blocking or as
// get_nb+wait, from an otherwise identical run. Each thread's piece
// holds 8 elements pre-filled so the landed value checks data movement,
// not just completion.
OneOp run_one(core::RuntimeConfig cfg, Mode mode, std::uint64_t elem,
              bool warm) {
  core::Runtime rt(std::move(cfg));
  OneOp r;
  rt.run([&](UpcThread& th) -> sim::Task<void> {
    ArrayDesc a = co_await th.all_alloc(8 * rt.threads(), 8, 8);
    const std::uint64_t fill = 1000 + th.id();
    std::vector<std::uint64_t> init(8, fill);
    rt.debug_write(a, th.id() * 8,
                   std::as_bytes(std::span(init.data(), init.size())));
    co_await th.barrier();
    if (th.id() == 0 && warm) rt.warm_address_cache(a);
    co_await th.barrier();
    if (th.id() == 0) {
      std::uint64_t v = 0;
      auto dst = std::as_writable_bytes(std::span(&v, 1));
      if (mode == Mode::kBlocking) {
        co_await th.get(a, elem, dst);
      } else {
        const OpHandle h = th.get_nb(a, elem, dst);
        co_await th.wait(h);
      }
      r.done = th.now();
      r.value = v;
    }
    co_await th.barrier();
  });
  r.counters = rt.counters();
  return r;
}

void expect_same_counters(const OpCounters& a, const OpCounters& b) {
  EXPECT_EQ(a.local_gets, b.local_gets);
  EXPECT_EQ(a.shm_gets, b.shm_gets);
  EXPECT_EQ(a.am_gets, b.am_gets);
  EXPECT_EQ(a.rdma_gets, b.rdma_gets);
  EXPECT_EQ(a.local_puts, b.local_puts);
  EXPECT_EQ(a.shm_puts, b.shm_puts);
  EXPECT_EQ(a.am_puts, b.am_puts);
  EXPECT_EQ(a.rdma_puts, b.rdma_puts);
  EXPECT_EQ(a.rdma_naks, b.rdma_naks);
}

// ------------------------------- blocking == get_nb + wait, per tier ---

TEST(AsyncEquivalence, LocalTier) {
  // elem 0 lives in thread 0's own piece.
  const OneOp b = run_one(config(net::TransportKind::kGm, 2, 1),
                          Mode::kBlocking, 0, false);
  const OneOp n = run_one(config(net::TransportKind::kGm, 2, 1),
                          Mode::kNonblocking, 0, false);
  EXPECT_EQ(b.done, n.done);
  EXPECT_EQ(b.value, 1000u);
  EXPECT_EQ(n.value, 1000u);
  EXPECT_EQ(n.counters.local_gets, 1u);
  expect_same_counters(b.counters, n.counters);
}

TEST(AsyncEquivalence, ShmTier) {
  // 1 node x 2 threads: elem 8 is thread 1's, reached via shared memory.
  const OneOp b = run_one(config(net::TransportKind::kGm, 1, 2),
                          Mode::kBlocking, 8, false);
  const OneOp n = run_one(config(net::TransportKind::kGm, 1, 2),
                          Mode::kNonblocking, 8, false);
  EXPECT_EQ(b.done, n.done);
  EXPECT_EQ(n.value, 1001u);
  EXPECT_EQ(n.counters.shm_gets, 1u);
  expect_same_counters(b.counters, n.counters);
}

TEST(AsyncEquivalence, AmTier) {
  // Remote access with the address cache disabled: default SVD/AM path.
  auto cfg = [] {
    auto c = config(net::TransportKind::kGm, 2, 1);
    c.cache.enabled = false;
    return c;
  };
  const OneOp b = run_one(cfg(), Mode::kBlocking, 8, false);
  const OneOp n = run_one(cfg(), Mode::kNonblocking, 8, false);
  EXPECT_EQ(b.done, n.done);
  EXPECT_EQ(n.value, 1001u);
  EXPECT_EQ(n.counters.am_gets, 1u);
  expect_same_counters(b.counters, n.counters);
}

TEST(AsyncEquivalence, RdmaTier) {
  // Warm cache: the remote base is known and pinned, so the GET goes
  // one-sided.
  const OneOp b = run_one(config(net::TransportKind::kGm, 2, 1),
                          Mode::kBlocking, 8, true);
  const OneOp n = run_one(config(net::TransportKind::kGm, 2, 1),
                          Mode::kNonblocking, 8, true);
  EXPECT_EQ(b.done, n.done);
  EXPECT_EQ(n.value, 1001u);
  EXPECT_EQ(n.counters.rdma_gets, 1u);
  expect_same_counters(b.counters, n.counters);
}

TEST(AsyncEquivalence, HoldsOnLapiToo) {
  for (const bool warm : {false, true}) {
    const OneOp b = run_one(config(net::TransportKind::kLapi, 2, 1),
                            Mode::kBlocking, 8, warm);
    const OneOp n = run_one(config(net::TransportKind::kLapi, 2, 1),
                            Mode::kNonblocking, 8, warm);
    EXPECT_EQ(b.done, n.done) << "warm=" << warm;
    expect_same_counters(b.counters, n.counters);
  }
}

TEST(AsyncEquivalence, MemgetNbMatchesMemget) {
  auto run = [](Mode mode) {
    core::Runtime rt(config(net::TransportKind::kGm, 2, 1));
    sim::Time done = 0;
    rt.run([&](UpcThread& th) -> sim::Task<void> {
      ArrayDesc a = co_await th.all_alloc(16, 8, 8);
      co_await th.barrier();
      if (th.id() == 0) {
        std::uint64_t v[4] = {};
        auto dst = std::as_writable_bytes(std::span(v));
        if (mode == Mode::kBlocking) {
          co_await th.memget(a, 8, dst);
        } else {
          co_await th.wait(th.memget_nb(a, 8, dst));
        }
        done = th.now();
      }
      co_await th.barrier();
    });
    return std::pair(done, rt.counters());
  };
  const auto [bt, bc] = run(Mode::kBlocking);
  const auto [nt, nc] = run(Mode::kNonblocking);
  EXPECT_EQ(bt, nt);
  expect_same_counters(bc, nc);
}

// ----------------------------------------- pipelining & the window ---

// Batch of `ops` remote warm-cache GETs with a bounded window; returns
// the batch's simulated duration and the run's comm.* report.
std::pair<double, RunReport> run_batch(std::uint32_t depth,
                                       std::uint32_t ops) {
  core::Runtime rt(config(net::TransportKind::kGm, 2, 1));
  sim::Time t0 = 0, t1 = 0;
  rt.run([&](UpcThread& th) -> sim::Task<void> {
    ArrayDesc a = co_await th.all_alloc(2048, 8, 1024);
    co_await th.barrier();
    if (th.id() == 0) rt.warm_address_cache(a);
    co_await th.barrier();
    if (th.id() == 0) {
      rt.reset_metrics();
      t0 = th.now();
      struct Pending {
        OpHandle h;
        std::uint64_t v = 0;
      };
      std::deque<Pending> pend;
      for (std::uint32_t i = 0; i < ops; ++i) {
        if (pend.size() >= depth) {
          co_await th.wait(pend.front().h);
          pend.pop_front();
        }
        pend.emplace_back();
        Pending& p = pend.back();
        p.h = th.get_nb(a, 1024 + i,
                        std::as_writable_bytes(std::span(&p.v, 1)));
      }
      while (!pend.empty()) {
        co_await th.wait(pend.front().h);
        pend.pop_front();
      }
      t1 = th.now();
    }
    co_await th.barrier();
  });
  return {sim::to_us(t1 - t0), rt.metrics()};
}

TEST(Pipelining, DeeperWindowsOverlapLatency) {
  const auto [t1, r1] = run_batch(1, 32);
  const auto [t2, r2] = run_batch(2, 32);
  const auto [t4, r4] = run_batch(4, 32);
  const auto [t8, r8] = run_batch(8, 32);
  EXPECT_LT(t2, t1);
  EXPECT_LT(t4, t2);
  EXPECT_LE(t8, t4);
  // Pipelining must actually pay: depth 8 at least halves the blocking
  // loop's batch time on GM (the bench shows ~2.8x).
  EXPECT_LT(t8, 0.5 * t1);
}

TEST(Pipelining, CommMetricsTrackIssueWindowAndStalls) {
  const auto [t4, r4] = run_batch(4, 32);
  (void)t4;
  EXPECT_EQ(r4.counter("comm.issued"), 32u);
  EXPECT_EQ(r4.counter("comm.outstanding_hwm"), 4u);
  // A full window forces the issuing thread to suspend in wait().
  EXPECT_GT(r4.counter("comm.wait_stalls"), 0u);
}

TEST(Pipelining, BatchesAreDeterministicAcrossRuns) {
  const auto [a, ra] = run_batch(8, 32);
  const auto [b, rb] = run_batch(8, 32);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_EQ(ra.counter("comm.wait_stalls"), rb.counter("comm.wait_stalls"));
}

// --------------------------------------------- handle lifecycle ---

TEST(CompletionEngine, WaitAllRetiresEveryOutstandingHandle) {
  core::Runtime rt(config(net::TransportKind::kGm, 2, 1));
  rt.run([&](UpcThread& th) -> sim::Task<void> {
    ArrayDesc a = co_await th.all_alloc(16, 8, 8);
    std::uint64_t fill = 7;
    rt.debug_write(a, th.id() * 8,
                   std::as_bytes(std::span(&fill, 1)));
    co_await th.barrier();
    if (th.id() == 0) {
      std::uint64_t v[4] = {};
      OpHandle hs[4];
      for (int i = 0; i < 4; ++i) {
        hs[i] = th.get_nb(a, 8, std::as_writable_bytes(std::span(&v[i], 1)));
      }
      EXPECT_EQ(th.outstanding(), 4u);
      co_await th.wait_all();
      EXPECT_EQ(th.outstanding(), 0u);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], 7u) << i;
      // All four handles are now spent: waiting again is a no-op.
      for (int i = 0; i < 4; ++i) co_await th.wait(hs[i]);
    }
    co_await th.barrier();
  });
}

TEST(CompletionEngine, WaitOnInvalidOrSpentHandleIsANoOp) {
  core::Runtime rt(config(net::TransportKind::kGm, 2, 1));
  rt.run([&](UpcThread& th) -> sim::Task<void> {
    ArrayDesc a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      co_await th.wait(OpHandle{});  // never issued
      std::uint64_t v = 0;
      const OpHandle h =
          th.get_nb(a, 8, std::as_writable_bytes(std::span(&v, 1)));
      const sim::Time before = th.now();
      co_await th.wait(h);
      const sim::Time after_first = th.now();
      EXPECT_GT(after_first, before);  // the op took wire time
      co_await th.wait(h);             // spent: returns immediately
      EXPECT_EQ(th.now(), after_first);
      // Slot reuse mints a new generation, so the old handle stays dead.
      std::uint64_t w = 0;
      const OpHandle h2 =
          th.get_nb(a, 8, std::as_writable_bytes(std::span(&w, 1)));
      EXPECT_NE(h.gen, h2.gen);
      const sim::Time t2 = th.now();
      co_await th.wait(h);  // old handle: still a no-op
      EXPECT_EQ(th.now(), t2);
      co_await th.wait(h2);
    }
    co_await th.barrier();
  });
}

TEST(CompletionEngine, FenceRetiresNonblockingPuts) {
  core::Runtime rt(config(net::TransportKind::kGm, 2, 1));
  rt.run([&](UpcThread& th) -> sim::Task<void> {
    ArrayDesc a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      const std::uint64_t v = 42;
      (void)th.put_nb(a, 8, std::as_bytes(std::span(&v, 1)));
      // fence() must retire the in-flight handle AND drain the remote
      // completion, exactly like a blocking put + fence.
      co_await th.fence();
      EXPECT_EQ(th.outstanding(), 0u);
    }
    co_await th.barrier();
    if (th.id() == 1) {
      EXPECT_EQ((co_await th.read<std::uint64_t>(a, 8)), 42u);
    }
    co_await th.barrier();
  });
}

TEST(CompletionEngine, ArgumentsAreValidatedAtIssueTime) {
  core::Runtime rt(config(net::TransportKind::kGm, 2, 1));
  rt.run([&](UpcThread& th) -> sim::Task<void> {
    ArrayDesc a = co_await th.all_alloc(16, 8, 8);
    co_await th.barrier();
    if (th.id() == 0) {
      std::byte partial[3];  // not a whole 8-byte element
      EXPECT_THROW((void)th.get_nb(a, 0, std::span(partial)),
                   std::invalid_argument);
      std::uint64_t v[2];
      // Crossing the ownership boundary at elem 7 -> 8.
      EXPECT_THROW(
          (void)th.get_nb(a, 7, std::as_writable_bytes(std::span(v))),
          std::invalid_argument);
      EXPECT_EQ(th.outstanding(), 0u);  // nothing was issued
    }
    co_await th.barrier();
  });
}

}  // namespace
}  // namespace xlupc::core
