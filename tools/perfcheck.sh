#!/bin/sh
# Simulator-core performance gate (docs/PERFORMANCE.md,
# .github/workflows/ci.yml "perf-smoke").
#
# Runs bench/simspeed (both modes, including the 4096-node scale probe)
# and compares the fresh report against the committed perf trajectory
# BENCH_simspeed.json at the repo root:
#
#   1. Event counts must match the committed report EXACTLY, workload by
#      workload. Simulations are deterministic; any drift means the
#      change altered simulated behaviour, not just speed.
#   2. The fast mode's events-per-wall-second must stay above a very
#      generous floor (default 0.2x the committed figure). Wall clock on
#      shared CI runners is noisy — this only catches order-of-magnitude
#      regressions (an accidental O(n^2), a debug build, the pool
#      disabled); tighter tracking is done by updating the committed
#      report deliberately and reviewing the diff.
#
# simspeed itself additionally exits nonzero if the fast and legacy
# modes disagree on the event sequence, so a perfcheck pass also
# certifies scheduler-backend determinism.
#
# Usage: tools/perfcheck.sh <build-dir> [min-ratio]
set -eu

build=${1:?usage: perfcheck.sh <build-dir> [min-ratio]}
min_ratio=${2:-0.2}

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
committed="$repo_root/BENCH_simspeed.json"
[ -f "$committed" ] || {
  echo "perfcheck: missing $committed" >&2
  exit 1
}

if ! command -v python3 >/dev/null 2>&1; then
  echo "perfcheck: python3 not available, skipping" >&2
  exit 0
fi

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT

# Behavioural goldens first (atomics, KV serving, congestion sweeps):
# those byte-compares live in tools/goldencheck.sh so ctest can gate
# them without paying for the simspeed scale probe.
"$repo_root"/tools/goldencheck.sh "$build"

"$build"/bench/simspeed --mode compare --scale-probe --json "$fresh"

python3 - "$committed" "$fresh" "$min_ratio" <<'EOF'
import json
import sys

committed_path, fresh_path, min_ratio = sys.argv[1], sys.argv[2], float(sys.argv[3])

def rows(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc["results"]:
        out[(row["workload"], row["mode"])] = row
    return out

committed = rows(committed_path)
fresh = rows(fresh_path)
status = 0

for (workload, mode), row in sorted(committed.items()):
    if mode not in ("fast", "legacy"):
        continue
    key = (workload, mode)
    if key not in fresh:
        print(f"perfcheck: workload {workload}/{mode} missing from fresh run",
              file=sys.stderr)
        status = 1
        continue
    want, got = row["events"], fresh[key]["events"]
    if want != got:
        print(f"perfcheck: {workload}/{mode} event count drifted: "
              f"committed {want}, fresh {got}", file=sys.stderr)
        status = 1
    if mode == "fast":
        want_eps = float(row["Mev/s"])
        got_eps = float(fresh[key]["Mev/s"])
        if got_eps < want_eps * min_ratio:
            print(f"perfcheck: {workload} fast mode at {got_eps} Mev/s, "
                  f"below {min_ratio}x the committed {want_eps} Mev/s",
                  file=sys.stderr)
            status = 1

if status == 0:
    print("perfcheck: event counts exact, throughput within bounds")
sys.exit(status)
EOF
