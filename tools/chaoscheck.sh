#!/bin/sh
# Chaos-recovery determinism check (docs/FAULTS.md).
#
# Runs the chaos_sweep benchmark — crash-stop node failures plus
# link-flap windows under the recovery layer — twice with the same seed
# and verifies that
#   1. the run completes at all (no scenario hangs: a crash must never
#      wedge a fence, wait, or the failure detector),
#   2. the two --json reports and tables are byte-identical
#      (replayability), and
#   3. the reports show real recovery work: the failure detector
#      declared deaths (fault.detector.deaths) and the circuit breaker
#      fast-failed ops to dead nodes (fault.breaker.fast_fails). On the
#      fat-tree ib machine, link flaps must additionally reroute over
#      alternate spines (fault.fabric.failover_routes).
#
# Usage: tools/chaoscheck.sh <path-to-chaos_sweep-binary> [seed] [machine]
# With no machine given the check loops over every calibrated machine.
set -eu

bin=${1:?usage: chaoscheck.sh <chaos_sweep-binary> [seed] [machine]}
seed=${2:-42}
machine=${3:-}

check_machine() {
  m=$1
  machine_args=""
  [ -n "$m" ] && machine_args="--machine $m"

  tmpdir=$(mktemp -d)
  # shellcheck disable=SC2086  # machine_args is intentionally word-split
  "$bin" --seed "$seed" $machine_args --json "$tmpdir/a.json" > "$tmpdir/a.txt"
  # shellcheck disable=SC2086
  "$bin" --seed "$seed" $machine_args --json "$tmpdir/b.json" > "$tmpdir/b.txt"

  if ! cmp -s "$tmpdir/a.json" "$tmpdir/b.json"; then
    echo "chaoscheck: --json reports differ across same-seed runs" >&2
    diff "$tmpdir/a.json" "$tmpdir/b.json" >&2 || true
    rm -rf "$tmpdir"
    exit 1
  fi
  if ! cmp -s "$tmpdir/a.txt" "$tmpdir/b.txt"; then
    echo "chaoscheck: table output differs across same-seed runs" >&2
    diff "$tmpdir/a.txt" "$tmpdir/b.txt" >&2 || true
    rm -rf "$tmpdir"
    exit 1
  fi

  counters="fault.detector.deaths fault.breaker.fast_fails"
  [ "$m" = "ib" ] && counters="$counters fault.fabric.failover_routes"
  for counter in $counters; do
    if ! grep -Eq "\"$counter\": *[1-9]" "$tmpdir/a.json"; then
      echo "chaoscheck: expected nonzero $counter in the report" >&2
      rm -rf "$tmpdir"
      exit 1
    fi
  done
  rm -rf "$tmpdir"

  echo "chaoscheck: seed $seed${m:+ on $m} replays byte-identically with detected crashes"
}

if [ -n "$machine" ]; then
  check_machine "$machine"
else
  for m in gm lapi ib; do
    check_machine "$m"
  done
fi
