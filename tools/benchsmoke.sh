#!/bin/sh
# Benchmark smoke run (docs/OBSERVABILITY.md, .github/workflows/ci.yml).
#
# Runs every benchmark binary under <build-dir>/bench once with a fixed
# seed and a --json report, and fails if any bench exits nonzero, writes
# no report, or writes malformed JSON. The bench configs are already
# tiny (the full set completes in about a minute), so this doubles as
# the CI gate that every figure/table generator still runs end-to-end.
# micro_datastructures is excluded: it is a google-benchmark binary with
# no --seed/--json surface.
#
# Reports land in $BENCHSMOKE_OUT when set (CI uploads them as
# artifacts), otherwise in a throwaway temp dir.
#
# With a third argument (a machine name: gm, lapi, ib — see
# docs/MACHINES.md), only the machine-parameterised sweeps run, each
# with --machine <name>; CI uses this to smoke the InfiniBand backend
# and archive its reports separately.
#
# Usage: tools/benchsmoke.sh <build-dir> [seed] [machine]
set -eu

build=${1:?usage: benchsmoke.sh <build-dir> [seed] [machine]}
seed=${2:-1}
machine=${3:-}

# Benches that accept --machine (keep in sync with bench/*.cpp).
machine_benches="fault_sweep pipeline_depth coalesce_sweep overlap_sweep atomics_sweep kvstore_sweep congestion_sweep"

if [ -n "${BENCHSMOKE_OUT:-}" ]; then
  outdir=$BENCHSMOKE_OUT
  mkdir -p "$outdir"
else
  outdir=$(mktemp -d)
  trap 'rm -rf "$outdir"' EXIT
fi

json_check=none
if command -v python3 >/dev/null 2>&1; then
  json_check=python3
fi

count=0
failed=0
for bin in "$build"/bench/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name=$(basename "$bin")
  [ "$name" = "micro_datastructures" ] && continue
  machine_args=""
  if [ -n "$machine" ]; then
    case " $machine_benches " in
      *" $name "*) machine_args="--machine $machine" ;;
      *) continue ;;  # bench has no --machine surface: skip in machine mode
    esac
  fi
  count=$((count + 1))
  # shellcheck disable=SC2086  # machine_args is intentionally word-split
  if ! "$bin" --seed "$seed" $machine_args --json "$outdir/$name.json" \
      > "$outdir/$name.txt" 2> "$outdir/$name.err"; then
    echo "benchsmoke: $name exited nonzero" >&2
    cat "$outdir/$name.err" >&2
    failed=1
    continue
  fi
  if [ ! -s "$outdir/$name.json" ]; then
    echo "benchsmoke: $name wrote no JSON report" >&2
    failed=1
    continue
  fi
  if [ "$json_check" = "python3" ] &&
      ! python3 -m json.tool "$outdir/$name.json" > /dev/null; then
    echo "benchsmoke: $name produced malformed JSON" >&2
    failed=1
    continue
  fi
  echo "benchsmoke: $name ok"
done

if [ "$count" -eq 0 ]; then
  echo "benchsmoke: no bench binaries under $build/bench" >&2
  exit 1
fi
[ "$failed" -eq 0 ] || exit 1
echo "benchsmoke: $count benches, all reports valid (seed $seed${machine:+, machine $machine})"
