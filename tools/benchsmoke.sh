#!/bin/sh
# Benchmark smoke run (docs/OBSERVABILITY.md, .github/workflows/ci.yml).
#
# Runs every benchmark binary under <build-dir>/bench once with a fixed
# seed and a --json report, and fails if any bench exits nonzero, writes
# no report, or writes malformed JSON. The bench configs are already
# tiny (the full set completes in about a minute), so this doubles as
# the CI gate that every figure/table generator still runs end-to-end.
# micro_datastructures is excluded: it is a google-benchmark binary with
# no --seed/--json surface.
#
# Reports land in $BENCHSMOKE_OUT when set (CI uploads them as
# artifacts), otherwise in a throwaway temp dir.
#
# Usage: tools/benchsmoke.sh <build-dir> [seed]
set -eu

build=${1:?usage: benchsmoke.sh <build-dir> [seed]}
seed=${2:-1}

if [ -n "${BENCHSMOKE_OUT:-}" ]; then
  outdir=$BENCHSMOKE_OUT
  mkdir -p "$outdir"
else
  outdir=$(mktemp -d)
  trap 'rm -rf "$outdir"' EXIT
fi

json_check=none
if command -v python3 >/dev/null 2>&1; then
  json_check=python3
fi

count=0
failed=0
for bin in "$build"/bench/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name=$(basename "$bin")
  [ "$name" = "micro_datastructures" ] && continue
  count=$((count + 1))
  if ! "$bin" --seed "$seed" --json "$outdir/$name.json" \
      > "$outdir/$name.txt" 2> "$outdir/$name.err"; then
    echo "benchsmoke: $name exited nonzero" >&2
    cat "$outdir/$name.err" >&2
    failed=1
    continue
  fi
  if [ ! -s "$outdir/$name.json" ]; then
    echo "benchsmoke: $name wrote no JSON report" >&2
    failed=1
    continue
  fi
  if [ "$json_check" = "python3" ] &&
      ! python3 -m json.tool "$outdir/$name.json" > /dev/null; then
    echo "benchsmoke: $name produced malformed JSON" >&2
    failed=1
    continue
  fi
  echo "benchsmoke: $name ok"
done

if [ "$count" -eq 0 ]; then
  echo "benchsmoke: no bench binaries under $build/bench" >&2
  exit 1
fi
[ "$failed" -eq 0 ] || exit 1
echo "benchsmoke: $count benches, all reports valid (seed $seed)"
