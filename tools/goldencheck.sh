#!/bin/sh
# Golden bench-report byte-compare (docs/OBSERVABILITY.md,
# .github/workflows/ci.yml "perf-smoke", ctest -R goldencheck).
#
# Regenerates every committed BENCH_<name>.json golden (except the
# wall-clock simspeed trajectory, which tools/perfcheck.sh gates with
# its own tolerance) and fails on any byte difference. The sweeps are
# pure simulation, so a diff means behaviour changed — regenerate the
# golden deliberately and review the diff:
#
#   build/bench/<name> --seed 1 --json BENCH_<name>.json
#
# atomics_sweep and kvstore_sweep run with the fabric disabled
# (infinite buffers), so this doubles as the gate that the
# congestion-aware fabric stays byte-invisible when off
# (docs/FABRIC.md); congestion_sweep pins the finite-buffer incast and
# routing-policy tables themselves.
#
# Usage: tools/goldencheck.sh <build-dir>
set -eu

build=${1:?usage: goldencheck.sh <build-dir>}

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

fresh=$(mktemp)
trap 'rm -f "$fresh"' EXIT

status=0
for name in atomics_sweep kvstore_sweep congestion_sweep; do
  committed="$repo_root/BENCH_$name.json"
  if [ ! -f "$committed" ]; then
    echo "goldencheck: missing $committed" >&2
    status=1
    continue
  fi
  "$build/bench/$name" --seed 1 --json "$fresh" > /dev/null
  if cmp -s "$committed" "$fresh"; then
    echo "goldencheck: $name matches the committed golden"
  else
    echo "goldencheck: $name drifted from the committed golden:" >&2
    diff "$committed" "$fresh" >&2 || true
    status=1
  fi
done
exit $status
