#!/bin/sh
# Fault-injection determinism check (docs/FAULTS.md).
#
# Runs the fault_sweep benchmark twice with the same nonzero seed and
# verifies that
#   1. the two --json reports are byte-identical (replayability), and
#   2. the reports show actual recovery work: nonzero
#      reliability.retransmits and reliability.rdma_nak_fallbacks.
#
# Usage: tools/faultcheck.sh <path-to-fault_sweep-binary> [seed] [machine]
# The optional machine name (gm, lapi, ib — docs/MACHINES.md) is passed
# through as --machine: the reliability layer must recover losses (and
# RNR-degraded pins) identically on every backend. With no machine given
# the check loops over every calibrated machine, so one ctest job covers
# all three backends.
set -eu

bin=${1:?usage: faultcheck.sh <fault_sweep-binary> [seed] [machine]}
seed=${2:-42}
machine=${3:-}

check_machine() {
  m=$1
  machine_args=""
  [ -n "$m" ] && machine_args="--machine $m"

  tmpdir=$(mktemp -d)
  # shellcheck disable=SC2086  # machine_args is intentionally word-split
  "$bin" --seed "$seed" $machine_args --json "$tmpdir/a.json" > "$tmpdir/a.txt"
  # shellcheck disable=SC2086
  "$bin" --seed "$seed" $machine_args --json "$tmpdir/b.json" > "$tmpdir/b.txt"

  if ! cmp -s "$tmpdir/a.json" "$tmpdir/b.json"; then
    echo "faultcheck: --json reports differ across same-seed runs" >&2
    diff "$tmpdir/a.json" "$tmpdir/b.json" >&2 || true
    rm -rf "$tmpdir"
    exit 1
  fi
  if ! cmp -s "$tmpdir/a.txt" "$tmpdir/b.txt"; then
    echo "faultcheck: table output differs across same-seed runs" >&2
    diff "$tmpdir/a.txt" "$tmpdir/b.txt" >&2 || true
    rm -rf "$tmpdir"
    exit 1
  fi

  for counter in reliability.retransmits reliability.rdma_nak_fallbacks; do
    if ! grep -Eq "\"$counter\": *[1-9]" "$tmpdir/a.json"; then
      echo "faultcheck: expected nonzero $counter in the report" >&2
      rm -rf "$tmpdir"
      exit 1
    fi
  done
  rm -rf "$tmpdir"

  echo "faultcheck: seed $seed${m:+ on $m} replays byte-identically with recovery work"
}

if [ -n "$machine" ]; then
  check_machine "$machine"
else
  for m in gm lapi ib; do
    check_machine "$m"
  done
fi
