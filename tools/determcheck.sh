#!/bin/sh
# Whole-run determinism check (docs/COMM_ENGINE.md, docs/METRICS.md).
#
# Runs a benchmark twice with the same seed and verifies that both the
# table output and the --json report are byte-identical. The default
# subject is fig7_small_get_latency (the paper's core latency figure);
# pipeline_depth exercises the asynchronous engine's overlapped path the
# same way. Any nondeterminism in the simulator, the completion engine,
# or the metrics fold shows up here as a diff.
#
# Usage: tools/determcheck.sh <path-to-bench-binary> [seed] [machine]
# The optional machine name (gm, lapi, ib — docs/MACHINES.md) is passed
# through as --machine, so the IB backend gets the same replay gate.
set -eu

bin=${1:?usage: determcheck.sh <bench-binary> [seed] [machine]}
seed=${2:-1}
machine=${3:-}

machine_args=""
[ -n "$machine" ] && machine_args="--machine $machine"

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# shellcheck disable=SC2086  # machine_args is intentionally word-split
"$bin" --seed "$seed" $machine_args --json "$tmpdir/a.json" > "$tmpdir/a.txt"
# shellcheck disable=SC2086
"$bin" --seed "$seed" $machine_args --json "$tmpdir/b.json" > "$tmpdir/b.txt"

if ! cmp -s "$tmpdir/a.json" "$tmpdir/b.json"; then
  echo "determcheck: --json reports differ across same-seed runs" >&2
  diff "$tmpdir/a.json" "$tmpdir/b.json" >&2 || true
  exit 1
fi
if ! cmp -s "$tmpdir/a.txt" "$tmpdir/b.txt"; then
  echo "determcheck: table output differs across same-seed runs" >&2
  diff "$tmpdir/a.txt" "$tmpdir/b.txt" >&2 || true
  exit 1
fi

echo "determcheck: $(basename "$bin")${machine:+ on $machine} seed $seed replays byte-identically"
