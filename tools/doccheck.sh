#!/bin/sh
# Documentation identifier check.
#
# Scans the markdown docs for C++-style identifiers (`Namespace::member`
# tokens in code fences or inline code) and fails when one no longer
# exists anywhere in the source tree — catching docs that drift from the
# API they describe. Run from anywhere:
#
#   tools/doccheck.sh            # or: ctest -R doccheck / ninja doccheck
#
# Heuristics: only qualified tokens (containing ::) are checked, because
# bare words are too noisy; the std:: namespace and template parameters
# are skipped; a token passes when its final component is found as a
# whole word anywhere under src/, bench/, tests/ or examples/.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

docs="README.md DESIGN.md EXPERIMENTS.md docs/API.md docs/CALIBRATION.md \
      docs/SIMULATOR.md docs/OBSERVABILITY.md docs/FAULTS.md \
      docs/COMM_ENGINE.md docs/COALESCING.md docs/MACHINES.md \
      docs/PERFORMANCE.md docs/WORKLOADS.md docs/FABRIC.md"
search_dirs="src bench tests examples"

status=0
checked=0

# Qualified identifiers, e.g. core::Runtime, Runtime::metrics, sim::us.
tokens=$(grep -ohE '[A-Za-z_][A-Za-z0-9_]*(::[A-Za-z_~][A-Za-z0-9_]*)+' \
           $docs 2>/dev/null | sort -u || true)

for token in $tokens; do
  case "$token" in
    std::*) continue ;;  # the standard library is not ours to check
  esac
  # Validate the last component; the qualifier may legitimately be
  # abbreviated in prose (core::Runtime vs xlupc::core::Runtime).
  leaf=${token##*::}
  checked=$((checked + 1))
  if ! grep -rqw -- "$leaf" $search_dirs; then
    echo "doccheck: stale identifier \`$token\` (no \`$leaf\` in sources)" >&2
    status=1
  fi
done

# Command-line flags documented for the bench binaries must be parsed
# somewhere in benchsupport.
for flag in $(grep -ohE -- '--[a-z][a-z0-9-]+' $docs 2>/dev/null |
                sort -u || true); do
  case "$flag" in
    # cmake/ctest invocations quoted in the build instructions.
    --build|--test-dir|--target|--output-on-failure) continue ;;
  esac
  checked=$((checked + 1))
  if ! grep -rq -- "$flag" src/benchsupport bench; then
    echo "doccheck: documented flag $flag not found in the harness" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "doccheck: $checked doc identifiers verified against the sources"
fi
exit $status
